"""DET — hidden-nondeterminism rules for engine and serving paths.

RTNN's Fig. 12/14 comparisons (and every bit-identity gate in this
repo: fused-batch vs solo, parallel fan-out vs serial, warm cache vs
cold) rest on runs being exactly replayable. These rules catch the
four ways nondeterminism leaks in: unseeded randomness, wall-clock
values escaping into data, iteration over unordered containers, and
thread-pool completion order. They run on the whole-project pass, so
"reachable from an engine or serve path" is a call-graph fact, not a
filename convention.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext, parent_map
from repro.analysis.rules import ProjectRule, dotted_name, register

# ----------------------------------------------------------------------
# DET001 — unseeded RNG
# ----------------------------------------------------------------------
_LEGACY_RNG = ("np.random.", "numpy.random.", "random.")
_SEED_KWARGS = ("seed", "entropy", "rng")


def _is_unseeded_rng(node: ast.Call) -> str | None:
    """A message fragment if ``node`` constructs unseeded randomness."""
    name = dotted_name(node.func)
    if name is None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "default_rng"
        ):
            name = "default_rng"
        else:
            return None
    base = name.rsplit(".", 1)[-1]
    if base == "default_rng":
        seeded = any(
            not (isinstance(a, ast.Constant) and a.value is None)
            for a in node.args
        ) or any(kw.arg in _SEED_KWARGS for kw in node.keywords)
        if not seeded:
            return f"{name}() without a seed draws fresh OS entropy"
        return None
    if any(name.startswith(p) for p in _LEGACY_RNG):
        if base in ("Generator", "SeedSequence", "PCG64", "default_rng"):
            return None
        return f"{name}() uses interpreter-global RNG state"
    return None


@register
class UnseededRngRule(ProjectRule):
    """Unseeded randomness reachable from an engine or serve path.

    Rationale: a replica that draws fresh OS entropy (``default_rng()``
    with no seed) or touches interpreter-global RNG state
    (``random.*``, legacy ``np.random.*``) returns different results on
    every run — the scatter-gather merge can no longer be checked
    bit-identical against the single-engine path, and a failing run
    cannot be replayed. Every stream must be derived from an explicit
    seed (API001 already routes construction through
    ``repro.utils.rng``; this rule additionally proves the call site
    *passes a seed* on any classified execution path).

    Bad::

        def knn_search(self, queries, k, radius):
            rng = default_rng()              # DET001: fresh entropy

    Good::

        def knn_search(self, queries, k, radius, seed=0):
            rng = default_rng(seed)
    """

    rule_id = "DET001"
    summary = "unseeded RNG on an engine/serve execution path"

    def check_project(self, project: ProjectContext) -> list[Finding]:
        out: list[Finding] = []
        for fn in project.functions.values():
            if not fn.in_context():
                continue
            if fn.module.config.is_rng_module(fn.rel_path):
                continue
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    why = _is_unseeded_rng(node)
                    if why:
                        out.append(self._finding_at(
                            fn.module, node,
                            f"{why} on a {fn.context_label()} path "
                            f"({fn.name}); results are not replayable — "
                            "pass an explicit seed",
                        ))
        return out


# ----------------------------------------------------------------------
# DET002 — wall-clock flowing into values
# ----------------------------------------------------------------------
_WALLCLOCK_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "loop.time",
    "datetime.now", "datetime.datetime.now", "datetime.utcnow",
    "datetime.datetime.utcnow",
}

#: names that denote *timing* — storage a clock read may legally reach
_TIMING_NAME = re.compile(
    r"(?:^|_)(t\d*|now|time|times|times?tamp|ts|clock|wall|walls|start|"
    r"started|starts|end|ends|ended|done|deadline|deadlines|at|s|sec|"
    r"secs|seconds|ms|elapsed|latency|latencies|wait|waits|backoff|"
    r"stall|spike|budget|duration|timeout|cooldown|until|expiry|"
    r"expires|expired|age|epoch|tick|ticks)(?:$|_)",
)


def _timing_name(name: str) -> bool:
    return bool(_TIMING_NAME.search(name.lower()))


def _target_name(t: ast.expr) -> str | None:
    if isinstance(t, ast.Name):
        return t.id
    if isinstance(t, ast.Attribute):
        return t.attr
    if isinstance(t, ast.Subscript):
        sl = t.slice
        if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
            return sl.value
        return _target_name(t.value)
    if isinstance(t, (ast.Tuple, ast.List)):
        return None
    return None


@register
class WallClockIntoValuesRule(ProjectRule):
    """Wall-clock reads flowing into result or counter values.

    Rationale: clock reads are fine as *span timing* (durations,
    deadlines, latency samples) but poison as *data* — a timestamp used
    as a seed, an id, a cache key, or a result field makes every run
    unique and every replay impossible. API002 bans clocks from
    modeled-time modules outright; this rule follows the value: on a
    classified path, a clock read may be compared, subtracted, or
    stored under a timing-ish name, and nothing else.

    Bad::

        def search_fused(self, kind, groups):
            seed = int(time.time())          # DET002: clock as data

    Good::

        started_at = time.monotonic()
        ...
        latency_s = time.monotonic() - started_at
    """

    rule_id = "DET002"
    summary = "wall-clock value flowing into results/counters"

    def check_project(self, project: ProjectContext) -> list[Finding]:
        out: list[Finding] = []
        for fn in project.functions.values():
            if not fn.in_context():
                continue
            parents = parent_map(fn.node)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name not in _WALLCLOCK_CALLS:
                    continue
                sink = self._bad_sink(node, parents)
                if sink:
                    out.append(self._finding_at(
                        fn.module, node,
                        f"{name}() flows into {sink} in {fn.name}; "
                        "wall-clock may only feed span timing "
                        "(durations, deadlines, latency) — derive "
                        "data values deterministically",
                    ))
        return out

    @staticmethod
    def _bad_sink(call: ast.Call, parents: dict) -> str | None:
        """Where the clock value lands, if that landing is a data sink."""
        node: ast.AST = call
        while True:
            parent = parents.get(node)
            if parent is None:
                return None
            if isinstance(parent, ast.BinOp) and isinstance(parent.op, ast.Sub):
                return None            # duration arithmetic
            if isinstance(parent, ast.Compare):
                return None            # deadline check
            if isinstance(parent, ast.keyword):
                if parent.arg is None or _timing_name(parent.arg):
                    return None
                return f"argument {parent.arg!r}"
            if isinstance(parent, ast.Call) and node is not parent.func:
                fname = dotted_name(parent.func)
                base = (fname or "").rsplit(".", 1)[-1]
                if base in ("int", "float", "min", "max", "abs", "round"):
                    node = parent
                    continue
                if _timing_name(base):
                    return None
                return f"a {base or 'call'}() argument"
            if isinstance(parent, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    parent.targets if isinstance(parent, ast.Assign)
                    else [parent.target]
                )
                for t in targets:
                    tname = _target_name(t)
                    if tname is not None and not _timing_name(tname):
                        return f"assignment to {tname!r}"
                return None
            if isinstance(parent, ast.Return):
                return "a return value"
            if isinstance(parent, (ast.Dict, ast.List, ast.Tuple, ast.Set)):
                node = parent
                continue
            if isinstance(parent, (ast.BinOp, ast.UnaryOp, ast.IfExp,
                                   ast.FormattedValue, ast.JoinedStr,
                                   ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp, ast.Starred)):
                node = parent
                continue
            return None


# ----------------------------------------------------------------------
# DET003 — iteration over unordered containers
# ----------------------------------------------------------------------
_ORDER_SENSITIVE_METHODS = {
    "append", "extend", "insert", "write", "writelines", "put", "join",
    "add_row", "send",
}
_ORDER_FREE_CONSUMERS = {
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all",
    "len", "Counter",
}


def _set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Is ``node`` statically set-typed (or derived from a known set)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.DictComp):
        # A dict *built from* a set inherits its ordering chaos.
        return any(_set_expr(g.iter, set_names) for g in node.generators)
    if isinstance(node, ast.Call):
        fn = node.func
        base = fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", None)
        if base in ("set", "frozenset"):
            return True
        if base in ("union", "intersection", "difference",
                    "symmetric_difference"):
            return _set_expr(fn.value, set_names) if isinstance(
                fn, ast.Attribute) else False
        if base in ("keys", "values", "items") and isinstance(
            fn, ast.Attribute
        ) and isinstance(fn.value, ast.Name):
            return fn.value.id in set_names     # dict derived from a set
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return (
            _set_expr(node.left, set_names) or _set_expr(node.right, set_names)
        )
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


@register
class UnorderedIterationRule(ProjectRule):
    """Order-dependent output built by iterating a set (or set-derived dict).

    Rationale: set iteration order depends on the interpreter's hash
    seed — the same program prints neighbors in one order today and
    another tomorrow. When that order reaches results (a list, a yield,
    an accumulating float), runs stop being comparable. Plain dicts
    iterate in insertion order (deterministic in CPython >= 3.7), so
    only dicts *built from* sets are flagged. ``sorted()`` at the
    boundary restores a canonical order.

    Bad::

        def search_fused(self, kind, groups):
            widths = {b.width for b in groups}
            out = []
            for w in widths:
                out.append(self._gas(w))     # DET003: hash order

    Good::

        for w in sorted(widths):
            out.append(self._gas(w))
    """

    rule_id = "DET003"
    summary = "set-ordered iteration reaching order-dependent output"

    def check_project(self, project: ProjectContext) -> list[Finding]:
        out: list[Finding] = []
        for fn in project.functions.values():
            if not fn.in_context():
                continue
            set_names: set[str] = set()
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign):
                    if _set_expr(node.value, set_names):
                        for t in node.targets:
                            if isinstance(t, ast.Name):
                                set_names.add(t.id)
            parents = parent_map(fn.node)
            for node in ast.walk(fn.node):
                if isinstance(node, ast.For):
                    if _set_expr(node.iter, set_names) and (
                        self._order_sensitive_body(node)
                    ):
                        out.append(self._finding_at(
                            fn.module, node,
                            f"iteration over a set in {fn.name} feeds "
                            "order-dependent output; wrap the iterable "
                            "in sorted(...) to fix the order",
                        ))
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                    if not any(
                        _set_expr(gen.iter, set_names)
                        for gen in node.generators
                    ):
                        continue
                    if isinstance(node, ast.GeneratorExp):
                        parent = parents.get(node)
                        if isinstance(parent, ast.Call):
                            pfn = parent.func
                            base = (
                                pfn.attr if isinstance(pfn, ast.Attribute)
                                else getattr(pfn, "id", None)
                            )
                            if base in _ORDER_FREE_CONSUMERS:
                                continue
                    out.append(self._finding_at(
                        fn.module, node,
                        f"comprehension over a set in {fn.name} "
                        "produces an order-dependent sequence; wrap "
                        "the iterable in sorted(...)",
                    ))
        return out

    @staticmethod
    def _order_sensitive_body(loop: ast.For) -> bool:
        for sub in ast.walk(loop):
            if isinstance(sub, (ast.Yield, ast.YieldFrom, ast.AugAssign)):
                return True
            if isinstance(sub, ast.Call):
                f = sub.func
                if isinstance(f, ast.Attribute) and (
                    f.attr in _ORDER_SENSITIVE_METHODS
                ):
                    return True
        return False


# ----------------------------------------------------------------------
# DET004 — completion-order dependence
# ----------------------------------------------------------------------
@register
class CompletionOrderRule(ProjectRule):
    """Thread-pool completion order reaching accumulated results.

    Rationale: ``as_completed`` yields futures in whatever order the
    OS scheduler finished them — appending or accumulating in that
    order bakes a race into the output (float addition is not
    commutative-associative in the bits). Either consume futures in
    submission order (``[f.result() for f in futures]``, what
    ``repro.core.parallel.execute_bundles`` does) or re-merge by an
    explicit index so the result layout is completion-independent.

    Bad::

        for fut in as_completed(futures):
            out.append(fut.result())         # DET004: completion order

    Good::

        for idx, fut in futs.items():
            out[idx] = fut.result()          # index re-merge
        # or simply: [f.result() for f in futures]  (submission order)
    """

    rule_id = "DET004"
    summary = "as_completed consumed without an index re-merge"

    def check_project(self, project: ProjectContext) -> list[Finding]:
        out: list[Finding] = []
        for fn in project.functions.values():
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.For):
                    continue
                if not self._iterates_as_completed(node.iter):
                    continue
                if self._order_dependent(node):
                    out.append(self._finding_at(
                        fn.module, node,
                        f"results consumed in as_completed order in "
                        f"{fn.name} without an index re-merge; collect "
                        "in submission order or store by index",
                    ))
        return out

    @staticmethod
    def _iterates_as_completed(it: ast.expr) -> bool:
        if not isinstance(it, ast.Call):
            return False
        name = dotted_name(it.func)
        base = (name or "").rsplit(".", 1)[-1]
        if base == "as_completed":
            return True
        if (
            isinstance(it.func, ast.Attribute)
            and it.func.attr in ("imap_unordered",)
        ):
            return True
        return False

    @staticmethod
    def _order_dependent(loop: ast.For) -> bool:
        """Accumulation in the body with no subscript-store re-merge."""
        accumulates = False
        remerges = False
        for sub in ast.walk(loop):
            if isinstance(sub, (ast.AugAssign, ast.Yield, ast.YieldFrom)):
                accumulates = True
            elif isinstance(sub, ast.Call):
                f = sub.func
                if isinstance(f, ast.Attribute) and f.attr in (
                    "append", "extend", "add", "update", "put",
                ):
                    accumulates = True
            elif isinstance(sub, ast.Assign):
                if any(isinstance(t, ast.Subscript) for t in sub.targets):
                    remerges = True
        return accumulates and not remerges
