"""API — layer hygiene: banned calls and dead imports.

Reproducibility and modeled-time integrity are whole-program
properties; one stray ``np.random`` or ``time.time()`` in the wrong
layer breaks them for every experiment built on top.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register

_RNG_PREFIXES = ("np.random.", "numpy.random.", "random.")
_RNG_MESSAGE = (
    "direct RNG construction: route through repro.utils.rng.default_rng "
    "so one integer seed reproduces the whole experiment"
)

_WALLCLOCK = {
    "time.time",
    "time.perf_counter",
    "time.monotonic",
    "time.process_time",
    "datetime.now",
    "datetime.datetime.now",
}


@register
class RngDisciplineRule(Rule):
    """All randomness flows through ``repro.utils.rng``."""

    rule_id = "API001"
    summary = "RNG outside repro.utils.rng"

    def check(self, ctx) -> list[Finding]:
        if ctx.config.is_rng_module(ctx.rel_path):
            return []
        out = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name and any(name.startswith(p) for p in _RNG_PREFIXES):
                    # Type references (np.random.Generator annotations /
                    # isinstance checks) are fine; constructions are not.
                    out.append(
                        self.finding(ctx, node, f"{name}: {_RNG_MESSAGE}")
                    )
        return out


@register
class WallClockRule(Rule):
    """No wall-clock reads inside modeled-time code."""

    rule_id = "API002"
    summary = "wall-clock time in modeled modules"

    def check(self, ctx) -> list[Finding]:
        if not ctx.config.is_modeled(ctx.rel_path):
            return []
        out = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _WALLCLOCK:
                    out.append(
                        self.finding(
                            ctx,
                            node,
                            f"{name}() in modeled-time code: simulator "
                            "wall-clock must never leak into modeled GPU "
                            "seconds; cost everything via CostModel",
                        )
                    )
        return out


@register
class UnusedImportRule(Rule):
    """Imports nobody reads (pyflakes F401, stdlib edition)."""

    rule_id = "API003"
    summary = "unused import"

    def check(self, ctx) -> list[Finding]:
        tree = ctx.tree
        imported: dict[str, tuple[ast.AST, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    bound = (a.asname or a.name).split(".")[0]
                    imported[bound] = (node, a.asname or a.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for a in node.names:
                    if a.name == "*":
                        continue
                    imported[a.asname or a.name] = (node, a.asname or a.name)
        if not imported:
            return []

        used: set[str] = set()
        exported: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and not isinstance(
                node.ctx, ast.Store
            ):
                used.add(node.id)
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name) and t.id == "__all__":
                        try:
                            exported |= set(ast.literal_eval(node.value))
                        except ValueError:
                            pass
            # String annotations / docstring references via typing are
            # rare here; forward-ref strings count as usage.
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ) and node.value.isidentifier():
                used.add(node.value)

        out = []
        for name, (node, _) in imported.items():
            if name not in used and name not in exported:
                out.append(
                    self.finding(
                        ctx,
                        node,
                        f"import {name!r} is never used; delete it (or "
                        "list it in __all__ if it is a re-export)",
                    )
                )
        return out
