"""SHD — per-stage shader contracts (the OptiX program model).

The simulated pipeline invokes intersection shaders exactly like OptiX
invokes IS/AH programs: a fixed batch signature, read-only geometry,
and launch-order ray ids that mean nothing until translated to user
query ids. These rules hold every shader class to that contract.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules import (
    SHADER_PARAMS,
    Rule,
    call_params,
    find_call_method,
    is_shader_class,
    register,
    root_name,
)

#: identifiers that denote acceleration-structure state a shader must
#: never write (the GAS is built once per launch group and shared)
_GEOMETRY_NAMES = frozenset(
    {"gas", "bvh", "points", "prim_lo", "prim_hi", "prim_order",
     "node_lo", "node_hi", "node_left", "node_right", "node_start",
     "node_end"}
)


def _shader_classes(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and is_shader_class(node):
            yield node


@register
class ShaderSignatureRule(Rule):
    """Shader ``__call__`` must take the batch ``(ray_ids, prim_ids)``."""

    rule_id = "SHD001"
    summary = "IS shader __call__ must be __call__(self, ray_ids, prim_ids)"

    def check(self, ctx) -> list[Finding]:
        if ctx.config.is_exempt(ctx.rel_path):
            return []
        out = []
        for cls in _shader_classes(ctx.tree):
            call = find_call_method(cls)
            if call is None:
                out.append(
                    self.finding(
                        ctx,
                        cls,
                        f"shader class {cls.name} defines no __call__; "
                        "the pipeline invokes shaders as "
                        "shader(ray_ids, prim_ids)",
                    )
                )
                continue
            params = call_params(call)
            if tuple(params) != SHADER_PARAMS:
                out.append(
                    self.finding(
                        ctx,
                        call,
                        f"{cls.name}.__call__ signature is "
                        f"({', '.join(params) or ''}); the IS contract is "
                        "(ray_ids, prim_ids) — per-pair batches in launch "
                        "order",
                    )
                )
        return out


@register
class ShaderGeometryMutationRule(Rule):
    """Shaders must not mutate GAS/BVH state mid-launch."""

    rule_id = "SHD002"
    summary = "IS shader must treat GAS/BVH geometry as read-only"

    def check(self, ctx) -> list[Finding]:
        if ctx.config.is_exempt(ctx.rel_path):
            return []
        out = []
        for cls in _shader_classes(ctx.tree):
            call = find_call_method(cls)
            if call is None:
                continue
            for node in ast.walk(call):
                targets: list[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for t in targets:
                    # Writes through plain local names are fine; writes
                    # into attributes/subscripts rooted at geometry
                    # state are not.
                    if isinstance(t, ast.Name):
                        continue
                    root = root_name(t)
                    if root in _GEOMETRY_NAMES:
                        out.append(
                            self.finding(
                                ctx,
                                t,
                                f"{cls.name}.__call__ writes to geometry "
                                f"state {root!r}; the GAS/BVH is shared "
                                "across rays and launches and must be "
                                "immutable during traversal",
                            )
                        )
        return out


@register
class ShaderQueryIdTranslationRule(Rule):
    """Per-query state must be addressed via the ``query_ids`` map."""

    rule_id = "SHD003"
    summary = "IS shader must translate ray ids via query_ids"

    def check(self, ctx) -> list[Finding]:
        if ctx.config.is_exempt(ctx.rel_path):
            return []
        out = []
        for cls in _shader_classes(ctx.tree):
            call = find_call_method(cls)
            if call is None:
                continue
            has_map = any(
                (isinstance(n, ast.Attribute) and n.attr == "query_ids")
                or (isinstance(n, ast.Name) and n.id == "query_ids")
                for n in ast.walk(cls)
            )
            if not has_map:
                # Shaders with no query_ids map keep per-*ray* state
                # only (e.g. counting shaders) — nothing to translate.
                continue
            translates = any(
                isinstance(n, ast.Subscript)
                and (
                    (isinstance(n.value, ast.Attribute)
                     and n.value.attr == "query_ids")
                    or (isinstance(n.value, ast.Name)
                        and n.value.id == "query_ids")
                )
                for n in ast.walk(call)
            )
            if not translates:
                out.append(
                    self.finding(
                        ctx,
                        call,
                        f"{cls.name} holds a query_ids map but __call__ "
                        "never subscripts it; ray ids are launch-order "
                        "indices and must be translated to user query ids "
                        "before touching per-query state",
                    )
                )
        return out
