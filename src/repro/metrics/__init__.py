"""Measurement utilities: time breakdowns, linear fits, geomeans."""

from repro.metrics.breakdown import Breakdown
from repro.metrics.fits import linear_fit, LinearFit, geomean

__all__ = ["Breakdown", "linear_fit", "LinearFit", "geomean"]
