"""Small statistics helpers: least-squares line fits and geomeans."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class LinearFit:
    """Result of a 1-D least-squares fit ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x):
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def linear_fit(x, y) -> LinearFit:
    """Ordinary least squares with the coefficient of determination.

    Used to reproduce Fig. 15: BVH construction time vs AABB count fits
    a line with R² = 0.996 in the paper.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D arrays")
    if len(x) < 2:
        raise ValueError("need at least two samples to fit a line")
    slope, intercept = np.polyfit(x, y, 1)
    resid = y - (slope * x + intercept)
    ss_res = float((resid**2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r2)


def geomean(values) -> float:
    """Geometric mean of positive values (the paper's speedup summary)."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        raise ValueError("geomean of empty sequence")
    if (values <= 0).any():
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.log(values).mean()))
