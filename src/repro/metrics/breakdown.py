"""The five-way time breakdown of Fig. 12.

Every end-to-end RTNN run decomposes its modeled time into the paper's
categories: ``data`` (host->device transfer), ``opt`` (reordering +
partitioning overhead), ``bvh`` (acceleration-structure builds), ``fs``
(the first search that finds first-hit AABBs), and ``search`` (the
actual neighbor search).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class Breakdown:
    """Modeled seconds per execution category."""

    data: float = 0.0
    opt: float = 0.0
    bvh: float = 0.0
    fs: float = 0.0
    search: float = 0.0

    @property
    def total(self) -> float:
        return self.data + self.opt + self.bvh + self.fs + self.search

    def __add__(self, other: "Breakdown") -> "Breakdown":
        return Breakdown(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )

    def as_dict(self) -> dict[str, float]:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["total"] = self.total
        return out

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "Breakdown":
        """Inverse of :meth:`as_dict` (ignores the derived ``total``)."""
        return cls(**{f.name: float(data.get(f.name, 0.0)) for f in fields(cls)})

    def fractions(self) -> dict[str, float]:
        """Each category as a fraction of the total (0 when total is 0)."""
        t = self.total
        if t <= 0:
            return {f.name: 0.0 for f in fields(self)}
        return {f.name: getattr(self, f.name) / t for f in fields(self)}
