"""Counter -> modeled-GPU-time conversion.

Wall-clock time of the Python simulator says nothing about GPU
performance, so every experiment in this repository reports *modeled*
time computed here from mechanistic counters. Constants below are
expressed in per-SM (or per-RT-core) cycles so the two device specs
scale each other naturally.

Calibration. Absolute constants are anchored to the paper's published
cost ratios (Appendix A):

* ``k1 : k3`` — BVH-build-per-AABB : range-IS-per-call — is 2:1 when the
  IS shader performs the sphere test and 20:1 when it can skip it;
* the KNN IS call is 3-6x the (sphere-testing) range IS call (§6.3);
* Step 1 (a traversal step) is "an order of magnitude" cheaper than
  Step 2 (an IS call) (§3.1).

The paper also quotes ``k1 : k2 = 1 : 15000`` for KNN (§5.2), which is
mutually inconsistent with the Appendix-A ratios above by several orders
of magnitude; we follow Appendix A and note the discrepancy in
EXPERIMENTS.md. The bundling optimizer does not depend on the numbers
chosen here anyway: it re-derives its ``k`` ratios by profiling this
very cost model (mirroring the paper's offline profiling step).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gpu.device import DeviceSpec, RTX_2080


class IsKind(enum.Enum):
    """Which intersection shader a launch runs (sets its cost)."""

    FIRST_HIT = "first_hit"      # scheduling pre-pass: record id, terminate
    RANGE_FAST = "range_fast"    # range search, sphere test elided
    RANGE_TEST = "range_test"    # range search with sphere test
    KNN = "knn"                  # sphere test + bounded priority queue


#: cycles per IS warp-step on one SM
IS_WARP_CYCLES = {
    IsKind.FIRST_HIT: 32.0,
    IsKind.RANGE_FAST: 64.0,
    IsKind.RANGE_TEST: 320.0,
    IsKind.KNN: 640.0,
}

#: cycles per traversal warp-step on one RT core (Step 1; ~10x cheaper
#: per element than Step 2)
RT_WARP_CYCLES = 24.0

#: cycles per AABB per SM for BVH construction. Sets k1 ~ 0.7 ns/AABB
#: on the RTX 2080 of ~0.3 ns/AABB, a few x the per-call range IS cost
#: — the same order as the paper's Appendix-A k1:k3 ratios and
#: consistent with the BVH share of the Fig. 12 time breakdowns.
BUILD_CYCLES_PER_AABB = 24.0

#: cycles per key per SM for the device radix sort (query reordering)
SORT_CYCLES_PER_KEY = 10.0

#: cycles per point per SM to bin points into the uniform grid
GRID_CYCLES_PER_POINT = 12.0

#: cycles per query per growth step for megacell computation (box
#: counts via global-memory prefix sums, atomics on partition counters)
MEGACELL_CYCLES_PER_STEP = 24.0

#: bytes per memory transaction (cache line)
LINE_BYTES = 128

#: default hit rates assumed when a launch ran without a cache tracer
DEFAULT_L1_HIT = 0.55
DEFAULT_L2_HIT = 0.60


@dataclass
class LaunchCost:
    """Modeled time breakdown of one ray-tracing launch."""

    rt_time: float      # RT-core traversal
    is_time: float      # SM shader execution
    mem_time: float     # bandwidth-bound memory traffic
    l1_hit_rate: float
    l2_hit_rate: float

    @property
    def total(self) -> float:
        return self.rt_time + self.is_time + self.mem_time

    @property
    def stall_fraction(self) -> float:
        """Fraction of the launch spent waiting on memory."""
        t = self.total
        return self.mem_time / t if t > 0 else 0.0

    def as_counters(self) -> dict:
        """The cost split under its observability counter names
        (seconds; ``modeled_s`` is the total a span should carry)."""
        return {
            "modeled_s": self.total,
            "rt_s": self.rt_time,
            "is_s": self.is_time,
            "mem_s": self.mem_time,
        }


class CostModel:
    """Convert hardware counters into modeled seconds for one device."""

    def __init__(self, device: DeviceSpec = RTX_2080):
        self.device = device

    # ------------------------------------------------------------------
    # primitive cost terms
    # ------------------------------------------------------------------
    def sm_time(self, warp_steps: float, cycles_per_step: float) -> float:
        """Time for SM work distributed across all SMs."""
        d = self.device
        return warp_steps * cycles_per_step / (d.n_sms * d.clock_hz)

    def rt_time(self, warp_steps: float) -> float:
        """Time for traversal work distributed across all RT cores."""
        d = self.device
        return warp_steps * RT_WARP_CYCLES / (d.n_rt_cores * d.clock_hz)

    def mem_time(
        self, transactions: float, l1_hit: float, l2_hit: float
    ) -> float:
        """Bandwidth-bound time for the traffic missing each cache level."""
        d = self.device
        bytes_past_l1 = transactions * LINE_BYTES * (1.0 - l1_hit)
        bytes_past_l2 = bytes_past_l1 * (1.0 - l2_hit)
        return bytes_past_l1 / d.l2_bw + bytes_past_l2 / d.dram_bw

    # ------------------------------------------------------------------
    # launches
    # ------------------------------------------------------------------
    def launch_cost(
        self,
        trace,
        kind: IsKind,
        tracer=None,
    ) -> LaunchCost:
        """Cost of one ``trace_batch`` launch.

        ``trace`` is a :class:`repro.bvh.traverse.TraceResult`. When a
        :class:`~repro.gpu.cache.SampledCacheTracer` ran alongside the
        launch, memory time is derived from its (scaled) per-level miss
        counts — capturing the temporal locality coherent rays enjoy.
        Without one, the exact same-iteration transaction counts with
        the documented default hit rates are used instead.
        """
        rt = self.rt_time(
            trace.warp_traversal_steps + trace.prim_test_warp_steps
        )
        is_t = self.sm_time(trace.warp_is_steps, IS_WARP_CYCLES[kind])
        if tracer is not None and tracer.sampled_accesses > 0:
            l1 = tracer.l1_hit_rate
            l2 = tracer.l2_hit_rate
            bytes_past_l1 = tracer.scaled_l1_misses() * LINE_BYTES
            bytes_past_l2 = tracer.scaled_l2_misses() * LINE_BYTES
            mem = bytes_past_l1 / self.device.l2_bw + bytes_past_l2 / self.device.dram_bw
        else:
            l1, l2 = DEFAULT_L1_HIT, DEFAULT_L2_HIT
            mem = self.mem_time(
                trace.node_transactions + trace.prim_transactions, l1, l2
            )
        return LaunchCost(
            rt_time=rt,
            is_time=is_t,
            mem_time=mem,
            l1_hit_rate=l1,
            l2_hit_rate=l2,
        )

    def occupancy(self, trace) -> float:
        """Modeled achieved occupancy.

        Proxy: traversal SIMD efficiency — the fraction of lane slots
        doing useful work while warps are resident. Incoherent launches
        mix long and short rays in a warp, idling most lanes for most of
        the warp's residency, which is what drags achieved occupancy
        down in the paper's Fig. 6.
        """
        return float(trace.simd_efficiency)

    # ------------------------------------------------------------------
    # non-launch kernels
    # ------------------------------------------------------------------
    def bvh_build_time(self, n_aabbs: int) -> float:
        """BVH construction: linear in AABB count (Eq. 3 / Fig. 15)."""
        return self.sm_time(float(n_aabbs), BUILD_CYCLES_PER_AABB)

    def build_cost_per_aabb(self) -> float:
        """k1 of the paper's cost model for this device."""
        return self.bvh_build_time(1)

    def is_cost_per_call(self, kind: IsKind) -> float:
        """Amortized per-IS-call cost of a search launch.

        This is the paper's ``k2``/``k3``, obtained by "offline
        profiling" of the simulated device. Profiled end-to-end, a
        launch spends a large fraction of the bare shader cycles again
        on traversal and memory traffic per IS call; the factor below
        folds that in so the bundling optimizer compares launch costs,
        not shader-only costs.
        """
        d = self.device
        per_shader = IS_WARP_CYCLES[kind] / (d.warp_size * d.n_sms * d.clock_hz)
        return per_shader * 1.5

    def transfer_time(self, n_bytes: int) -> float:
        """Host->device copy (device->host is modeled as hidden, §6.2)."""
        return n_bytes / self.device.pcie_bw

    def sort_time(self, n_keys: int) -> float:
        """Device radix sort used by query scheduling."""
        return self.sm_time(float(n_keys), SORT_CYCLES_PER_KEY)

    def grid_build_time(self, n_points: int) -> float:
        """Uniform-grid binning kernel (partitioning and grid baselines)."""
        return self.sm_time(float(n_points), GRID_CYCLES_PER_POINT)

    def megacell_time(self, total_growth_steps: int) -> float:
        """Iterative megacell growth over all queries (Listing 3, l.1-5)."""
        return self.sm_time(float(total_growth_steps), MEGACELL_CYCLES_PER_STEP)
