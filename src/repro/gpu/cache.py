"""Sampled set-associative LRU cache hierarchy.

The traversal engine reports, per lockstep iteration, which BVH nodes
and primitives each ray touches. Simulating every access through an LRU
hierarchy would dominate runtime, so — following the standard sampled
micro-architectural simulation methodology (SMARTS-style) — we simulate
a deterministic subset of warps exactly and report their hit rates as
the estimate for the whole launch.

Address mapping: BVH nodes and primitives live in separate regions of a
flat address space; consecutive ids share cache lines (4 nodes or
primitives per 128 B line), so spatially-coherent launch orders also
enjoy spatial locality, exactly like the real memory layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0


class _SetAssociativeLRU:
    """A single set-associative LRU cache over line addresses.

    Each set is a plain Python list ordered LRU-first — membership and
    reordering on <= a few dozen ways are C-speed list operations,
    which keeps the per-access simulation cheap.
    """

    def __init__(self, n_sets: int, n_ways: int):
        if n_sets < 1 or n_ways < 1:
            raise ValueError("cache needs at least 1 set and 1 way")
        self.n_sets = n_sets
        self.n_ways = n_ways
        self.sets: list[list[int]] = [[] for _ in range(n_sets)]
        self.stats = CacheStats()

    def access(self, line: int) -> bool:
        """Access one line; returns True on hit. Misses allocate."""
        s = self.sets[line % self.n_sets]
        if line in s:
            if s[-1] != line:
                s.remove(line)
                s.append(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(s) >= self.n_ways:
            s.pop(0)
        s.append(line)
        return False


class CacheHierarchy:
    """L1 (per-SM, we simulate the one hosting the sampled warps) + L2."""

    def __init__(
        self,
        l1_kb: int = 64,
        l2_kb: int = 4096,
        line_bytes: int = 128,
        l1_ways: int = 4,
        l2_ways: int = 16,
        l2_share: float = 1.0 / 46.0,
    ):
        # The sampled warps represent one SM's slice of the machine, so
        # they see one L1 and (approximately) their fair share of L2.
        l1_lines = max((l1_kb * 1024) // line_bytes, l1_ways)
        l2_lines = max(int((l2_kb * 1024 * l2_share)) // line_bytes, l2_ways)
        self.line_bytes = line_bytes
        self.l1 = _SetAssociativeLRU(max(l1_lines // l1_ways, 1), l1_ways)
        self.l2 = _SetAssociativeLRU(max(l2_lines // l2_ways, 1), l2_ways)

    def access(self, line: int) -> None:
        if not self.l1.access(line):
            self.l2.access(line)

    @property
    def l1_stats(self) -> CacheStats:
        return self.l1.stats

    @property
    def l2_stats(self) -> CacheStats:
        return self.l2.stats


#: ids-per-line for nodes and primitives (128 B line / 32 B record)
IDS_PER_LINE = 4
#: offset separating primitive addresses from node addresses
PRIM_REGION = 1 << 40


class SampledCacheTracer:
    """Memory tracer sampling one SM's worth of *contiguous* warps.

    Plugs into :func:`repro.bvh.traverse.trace_batch` via the ``tracer``
    argument. An SM hosts warps drawn from consecutive launch indices,
    and ray-tracing kernels are register-heavy enough that only ~8 warps
    are resident at once, so we simulate one contiguous block of
    ``max_warps`` warps (taken from the middle of the launch to avoid
    boundary effects) sharing one L1 and their slice of L2. Within an
    iteration each sampled warp's accesses are deduplicated first
    (coalescing) and then run through the hierarchy.
    """

    def __init__(
        self,
        n_rays: int,
        warp_size: int = 32,
        max_warps: int = 8,
        l1_kb: int = 64,
        l2_kb: int = 4096,
        l2_share: float = 1.0 / 46.0,
    ):
        n_warps = max((n_rays + warp_size - 1) // warp_size, 1)
        block = min(max_warps, n_warps)
        start = (n_warps - block) // 2
        self.sampled = np.arange(start, start + block, dtype=np.int64)
        self._sampled_set = np.zeros(n_warps, dtype=bool)
        self._sampled_set[self.sampled] = True
        self.warp_size = warp_size
        self.hier = CacheHierarchy(l1_kb=l1_kb, l2_kb=l2_kb, l2_share=l2_share)
        self.sample_fraction = len(self.sampled) / n_warps

    def _run(self, ray_ids: np.ndarray, lines: np.ndarray) -> None:
        warps = ray_ids // self.warp_size
        keep = self._sampled_set[warps]
        if not keep.any():
            return
        # Every lane request goes through the hierarchy (requests are
        # what profilers count): a coherent warp's lanes hit the line
        # their first lane just brought in — coalescing and cache reuse
        # both surface as hits, incoherent lanes as misses.
        access = self.hier.access
        for line in lines[keep].tolist():
            access(line)

    # -- tracer protocol -------------------------------------------------
    def on_node_access(self, iteration: int, ray_ids: np.ndarray, node_ids: np.ndarray):
        self._run(ray_ids, node_ids // IDS_PER_LINE)

    def on_prim_access(self, iteration: int, ray_ids: np.ndarray, prim_ids: np.ndarray):
        self._run(ray_ids, PRIM_REGION + prim_ids // IDS_PER_LINE)

    # -- results ----------------------------------------------------------
    @property
    def l1_hit_rate(self) -> float:
        return self.hier.l1_stats.hit_rate

    @property
    def l2_hit_rate(self) -> float:
        return self.hier.l2_stats.hit_rate

    @property
    def sampled_accesses(self) -> int:
        """Coalesced accesses issued by the sampled block."""
        return self.hier.l1_stats.accesses

    def counters(self) -> dict:
        """Sampled hit/miss counts under their observability names.

        These are the *sampled block's* raw counts (deterministic for a
        fixed launch), not launch-wide estimates — exactly what the
        bench harness wants for exact-match regression comparison.
        """
        l1, l2 = self.hier.l1_stats, self.hier.l2_stats
        return {
            "l1_hits": l1.hits,
            "l1_misses": l1.misses,
            "l2_hits": l2.hits,
            "l2_misses": l2.misses,
        }

    def scaled_l1_misses(self) -> float:
        """Launch-wide L1 miss estimate (sampled misses / sample fraction)."""
        return self.hier.l1_stats.misses / self.sample_fraction

    def scaled_l2_misses(self) -> float:
        """Launch-wide L2 miss estimate."""
        return self.hier.l2_stats.misses / self.sample_fraction
