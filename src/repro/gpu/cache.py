"""Sampled set-associative LRU cache hierarchy.

The traversal engine reports, per lockstep iteration, which BVH nodes
and primitives each ray touches. Simulating every access through an LRU
hierarchy would dominate runtime, so — following the standard sampled
micro-architectural simulation methodology (SMARTS-style) — we simulate
a deterministic subset of warps exactly and report their hit rates as
the estimate for the whole launch.

Address mapping: BVH nodes and primitives live in separate regions of a
flat address space; consecutive ids share cache lines (4 nodes or
primitives per 128 B line), so spatially-coherent launch orders also
enjoy spatial locality, exactly like the real memory layout.

Two tracer implementations share the sampling policy:

* :class:`SampledCacheTracer` (default) only *records* the sampled
  block's line stream during traversal and derives hit/miss counts
  afterwards via the vectorized reuse-distance replay in
  :mod:`repro.gpu.replay` — exact by the LRU stack-inclusion property.
* :class:`OnlineSampledCacheTracer` pushes every line through the
  Python-level LRU as it arrives. It is the reference implementation
  the replay is asserted against, and remains available for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.replay import replay_hierarchy


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0


def hierarchy_geometry(
    l1_kb: int = 64,
    l2_kb: int = 4096,
    line_bytes: int = 128,
    l1_ways: int = 4,
    l2_ways: int = 16,
    l2_share: float = 1.0 / 46.0,
) -> tuple[int, int, int, int]:
    """Resolve capacities into ``(l1_sets, l1_ways, l2_sets, l2_ways)``.

    Single source of truth for the set/way geometry, shared by the
    online hierarchy and the replay tracer so both simulate the exact
    same cache.
    """
    l1_lines = max((l1_kb * 1024) // line_bytes, l1_ways)
    l2_lines = max(int((l2_kb * 1024 * l2_share)) // line_bytes, l2_ways)
    return (
        max(l1_lines // l1_ways, 1),
        l1_ways,
        max(l2_lines // l2_ways, 1),
        l2_ways,
    )


class _SetAssociativeLRU:
    """A single set-associative LRU cache over line addresses.

    Each set is a plain Python list ordered LRU-first — membership and
    reordering on <= a few dozen ways are C-speed list operations,
    which keeps the per-access simulation cheap.
    """

    def __init__(self, n_sets: int, n_ways: int):
        if n_sets < 1 or n_ways < 1:
            raise ValueError("cache needs at least 1 set and 1 way")
        self.n_sets = n_sets
        self.n_ways = n_ways
        self.sets: list[list[int]] = [[] for _ in range(n_sets)]
        self.stats = CacheStats()

    def access(self, line: int) -> bool:
        """Access one line; returns True on hit. Misses allocate."""
        s = self.sets[line % self.n_sets]
        if line in s:
            if s[-1] != line:
                s.remove(line)
                s.append(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(s) >= self.n_ways:
            s.pop(0)
        s.append(line)
        return False


class CacheHierarchy:
    """L1 (per-SM, we simulate the one hosting the sampled warps) + L2."""

    def __init__(
        self,
        l1_kb: int = 64,
        l2_kb: int = 4096,
        line_bytes: int = 128,
        l1_ways: int = 4,
        l2_ways: int = 16,
        l2_share: float = 1.0 / 46.0,
    ):
        # The sampled warps represent one SM's slice of the machine, so
        # they see one L1 and (approximately) their fair share of L2.
        l1_sets, l1_w, l2_sets, l2_w = hierarchy_geometry(
            l1_kb=l1_kb,
            l2_kb=l2_kb,
            line_bytes=line_bytes,
            l1_ways=l1_ways,
            l2_ways=l2_ways,
            l2_share=l2_share,
        )
        self.line_bytes = line_bytes
        self.l1 = _SetAssociativeLRU(l1_sets, l1_w)
        self.l2 = _SetAssociativeLRU(l2_sets, l2_w)

    def access(self, line: int) -> None:
        if not self.l1.access(line):
            self.l2.access(line)

    @property
    def l1_stats(self) -> CacheStats:
        return self.l1.stats

    @property
    def l2_stats(self) -> CacheStats:
        return self.l2.stats


@dataclass
class _ReplayedHierarchy:
    """Finalized replay results, shaped like :class:`CacheHierarchy`."""

    l1_stats: CacheStats
    l2_stats: CacheStats


#: ids-per-line for nodes and primitives (128 B line / 32 B record)
IDS_PER_LINE = 4
#: offset separating primitive addresses from node addresses
PRIM_REGION = 1 << 40


class _WarpBlockSampler:
    """Shared sampling policy: one SM's worth of *contiguous* warps.

    An SM hosts warps drawn from consecutive launch indices, and
    ray-tracing kernels are register-heavy enough that only ~8 warps are
    resident at once, so we sample one contiguous block of ``max_warps``
    warps (taken from the middle of the launch to avoid boundary
    effects) sharing one L1 and their slice of L2.
    """

    def __init__(self, n_rays: int, warp_size: int, max_warps: int):
        n_warps = max((n_rays + warp_size - 1) // warp_size, 1)
        block = min(max_warps, n_warps)
        start = (n_warps - block) // 2
        self.sampled = np.arange(start, start + block, dtype=np.int64)
        self._sampled_set = np.zeros(n_warps, dtype=bool)
        self._sampled_set[self.sampled] = True
        self.warp_size = warp_size
        self.sample_fraction = len(self.sampled) / n_warps


class SampledCacheTracer(_WarpBlockSampler):
    """Record-and-replay memory tracer for the sampled warp block.

    Plugs into :func:`repro.bvh.traverse.trace_batch` via the ``tracer``
    argument. During traversal the hooks only *append* the sampled
    block's line addresses (cheap NumPy slicing); :meth:`finalize` then
    computes the per-level hit/miss counts with the vectorized
    reuse-distance replay — bit-identical to running the stream through
    :class:`CacheHierarchy` online, at a fraction of the cost.

    Every lane request enters the stream (requests are what profilers
    count): a coherent warp's lanes hit the line their first lane just
    brought in — coalescing and cache reuse both surface as hits,
    incoherent lanes as misses.

    Results (``hier``, hit rates, counters) finalize lazily on first
    read; recording after a read transparently re-finalizes, since the
    replay always recomputes from the full stream.
    """

    def __init__(
        self,
        n_rays: int,
        warp_size: int = 32,
        max_warps: int = 8,
        l1_kb: int = 64,
        l2_kb: int = 4096,
        l2_share: float = 1.0 / 46.0,
    ):
        super().__init__(n_rays, warp_size, max_warps)
        self._geometry = hierarchy_geometry(
            l1_kb=l1_kb, l2_kb=l2_kb, l2_share=l2_share
        )
        self._chunks: list[np.ndarray] = []
        self._replayed: _ReplayedHierarchy | None = None

    # -- tracer protocol -------------------------------------------------
    def on_node_access(self, iteration: int, ray_ids: np.ndarray, node_ids: np.ndarray):
        keep = self._sampled_set[ray_ids // self.warp_size]
        if keep.any():
            self._chunks.append(node_ids[keep].astype(np.int64) // IDS_PER_LINE)
            self._replayed = None

    def on_prim_access(self, iteration: int, ray_ids: np.ndarray, prim_ids: np.ndarray):
        keep = self._sampled_set[ray_ids // self.warp_size]
        if keep.any():
            self._chunks.append(
                PRIM_REGION + prim_ids[keep].astype(np.int64) // IDS_PER_LINE
            )
            self._replayed = None

    def finalize(self) -> None:
        """Replay the recorded stream; idempotent until new recording."""
        if self._replayed is not None:
            return
        if self._chunks:
            lines = np.concatenate(self._chunks)
        else:
            lines = np.empty(0, dtype=np.int64)
        (l1h, l1m), (l2h, l2m) = replay_hierarchy(lines, *self._geometry)
        self._replayed = _ReplayedHierarchy(
            CacheStats(l1h, l1m), CacheStats(l2h, l2m)
        )

    # -- results ----------------------------------------------------------
    @property
    def hier(self) -> _ReplayedHierarchy:
        self.finalize()
        assert self._replayed is not None
        return self._replayed

    @property
    def l1_hit_rate(self) -> float:
        return self.hier.l1_stats.hit_rate

    @property
    def l2_hit_rate(self) -> float:
        return self.hier.l2_stats.hit_rate

    @property
    def sampled_accesses(self) -> int:
        """Coalesced accesses issued by the sampled block."""
        return self.hier.l1_stats.accesses

    def counters(self) -> dict:
        """Sampled hit/miss counts under their observability names.

        These are the *sampled block's* raw counts (deterministic for a
        fixed launch), not launch-wide estimates — exactly what the
        bench harness wants for exact-match regression comparison.
        """
        l1, l2 = self.hier.l1_stats, self.hier.l2_stats
        return {
            "l1_hits": l1.hits,
            "l1_misses": l1.misses,
            "l2_hits": l2.hits,
            "l2_misses": l2.misses,
        }

    def scaled_l1_misses(self) -> float:
        """Launch-wide L1 miss estimate (sampled misses / sample fraction)."""
        return self.hier.l1_stats.misses / self.sample_fraction

    def scaled_l2_misses(self) -> float:
        """Launch-wide L2 miss estimate."""
        return self.hier.l2_stats.misses / self.sample_fraction


class OnlineSampledCacheTracer(_WarpBlockSampler):
    """Reference tracer: per-access online LRU simulation.

    Original implementation of :class:`SampledCacheTracer`, retained as
    the oracle the replay is asserted against (and for step-debugging a
    single launch). Interface-compatible with the replay tracer.
    """

    def __init__(
        self,
        n_rays: int,
        warp_size: int = 32,
        max_warps: int = 8,
        l1_kb: int = 64,
        l2_kb: int = 4096,
        l2_share: float = 1.0 / 46.0,
    ):
        super().__init__(n_rays, warp_size, max_warps)
        self.hier = CacheHierarchy(l1_kb=l1_kb, l2_kb=l2_kb, l2_share=l2_share)

    def _run(self, ray_ids: np.ndarray, lines: np.ndarray) -> None:
        warps = ray_ids // self.warp_size
        keep = self._sampled_set[warps]
        if not keep.any():
            return
        access = self.hier.access
        for line in lines[keep].tolist():
            access(line)

    # -- tracer protocol -------------------------------------------------
    def on_node_access(self, iteration: int, ray_ids: np.ndarray, node_ids: np.ndarray):
        self._run(ray_ids, node_ids.astype(np.int64) // IDS_PER_LINE)

    def on_prim_access(self, iteration: int, ray_ids: np.ndarray, prim_ids: np.ndarray):
        self._run(ray_ids, PRIM_REGION + prim_ids.astype(np.int64) // IDS_PER_LINE)

    def finalize(self) -> None:
        """Online simulation has nothing to defer; present for protocol."""

    # -- results ----------------------------------------------------------
    @property
    def l1_hit_rate(self) -> float:
        return self.hier.l1_stats.hit_rate

    @property
    def l2_hit_rate(self) -> float:
        return self.hier.l2_stats.hit_rate

    @property
    def sampled_accesses(self) -> int:
        """Coalesced accesses issued by the sampled block."""
        return self.hier.l1_stats.accesses

    def counters(self) -> dict:
        """Sampled hit/miss counts under their observability names."""
        l1, l2 = self.hier.l1_stats, self.hier.l2_stats
        return {
            "l1_hits": l1.hits,
            "l1_misses": l1.misses,
            "l2_hits": l2.hits,
            "l2_misses": l2.misses,
        }

    def scaled_l1_misses(self) -> float:
        """Launch-wide L1 miss estimate (sampled misses / sample fraction)."""
        return self.hier.l1_stats.misses / self.sample_fraction

    def scaled_l2_misses(self) -> float:
        """Launch-wide L2 miss estimate."""
        return self.hier.l2_stats.misses / self.sample_fraction
