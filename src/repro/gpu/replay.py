"""Vectorized replay of a recorded cache-access stream.

The sampled cache tracer used to push every line address through a
Python-level set-associative LRU (:class:`repro.gpu.cache._SetAssociativeLRU`)
*during* traversal — hundreds of thousands of interpreter-speed
``access()`` calls per launch.  This module computes the exact same
hit/miss counts *after* the launch from the recorded stream, entirely in
NumPy.

Correctness rests on the classic LRU **stack-inclusion property**: an
access to line ``X`` hits a ``W``-way set iff fewer than ``W`` distinct
other lines of the same set were touched since the previous access to
``X`` (a first-ever access always misses).  That count is the
set-associative *reuse distance*, and it is computed here without any
per-access Python work:

1. **Global run collapse** — consecutive accesses to the same line
   have reuse distance 0 and always hit (``W >= 1``); only run heads
   need a real distance.
2. **Set grouping and set-local run collapse** — a stable sort by set
   makes each set's subsequence contiguous.  Within a set, an access
   whose previous *same-set* access touched the same line also has
   distance 0 (nothing of its set intervened), and dropping it is
   exact for every survivor: only whole same-line runs sit between
   consecutive surviving occurrences of a line, so no surviving
   window gains or loses a distinct line.  Warp-coherent streams
   interleave sets heavily, so this is where the stream collapses
   (typically 10-20x).
3. **Previous-use links** — one stable sort by (set, line) makes
   consecutive occurrences of a line adjacent, yielding each access's
   previous use as a *set-local* position (``-1`` = first use).
4. **Reuse distance as an order statistic** — writing ``p(a)`` for the
   set-local position of ``a``'s previous use, a line counts toward
   ``a``'s distance iff its *first* access inside the window
   ``(p(a), a)`` lies there, and an access ``b`` is such a first
   access iff ``p(b) <= p(a)``.  Splitting the window at ``p(a)``
   (every access at or before ``p(a)`` trivially satisfies ``p(b) < b
   <= p(a)``) gives::

       distance(a) = #{b < a, same set, p(b) < p(a)} - (p(a) + 1)

   The remaining term is a segmented "count smaller elements to the
   left", evaluated exactly by a top-down vectorized merge-split
   (:func:`_segmented_left_smaller`): one stable sort up front, then
   ``log2(segment length)`` levels of pure cumsum/scatter arithmetic.

The L2 stream is the subsequence of L1 misses, replayed the same way,
so the whole hierarchy stays bit-identical to the online simulation
(asserted against the retained online LRU in ``tests/test_gpu_replay.py``).
"""

from __future__ import annotations

import numpy as np

#: keep chained (group, value) sort keys comfortably inside int64
_KEY_LIMIT = 1 << 62


def _segmented_left_smaller(
    seg: np.ndarray, pos: np.ndarray, val: np.ndarray
) -> np.ndarray:
    """Per-element count of strictly-smaller values earlier in its segment.

    Parameters
    ----------
    seg:
        Segment id per element (comparisons never cross segments).
    pos:
        Dense 0-based position of the element *within its segment*.
    val:
        Comparison values. Ties are counted as if broken by ``pos`` —
        exact whenever the values relevant to the caller are distinct
        (the replay's are; see :func:`lru_hit_mask`).

    Returns
    -------
    ``counts`` with ``counts[a] = #{b : seg[b] == seg[a],
    pos[b] < pos[a], val[b] < val[a]}``.

    Vectorized merge-sort pair counting, run top-down: one global
    stable sort by ``(seg, val)`` up front, then each level splits
    every width-``2w`` block of a segment into its position-halves with
    pure O(n) arithmetic — the halves of a ``(seg, block, val)``-sorted
    run are extracted by a stable partition (cumsums + one scatter),
    and "left-half elements with smaller value" is a segmented running
    count in that same order. Every in-segment pair ``(b, a)`` is
    counted at exactly the level where their blocks first split. No
    per-level sort or binary search, which is what makes the replay
    cheaper than the online simulation it replaces.
    """
    n = len(seg)
    counts = np.zeros(n, dtype=np.int64)
    if n < 2:
        return counts
    seg = np.ascontiguousarray(seg, dtype=np.int64)
    pos = np.ascontiguousarray(pos, dtype=np.int64)
    max_len = int(pos.max()) + 1
    if max_len < 2:
        return counts

    v = np.asarray(val, dtype=np.int64) - int(val.min())
    span = int(v.max()) + 1
    if (int(seg.max()) + 1) * span >= _KEY_LIMIT:
        v = np.unique(v, return_inverse=True)[1].astype(np.int64)
        span = int(v.max()) + 1
    order = np.argsort(seg * span + v, kind="stable")

    # Working state lives in the *permuted* domain (value order within
    # each run) so levels never re-gather the inputs: the stable
    # partition keeps every element inside its run, runs nest inside
    # segments, so segment boundaries are computed once and positions /
    # original ids / counts are scattered along.  int32 halves the
    # memory traffic (positions, counts and indices all fit).
    seg_bound = np.empty(n, dtype=bool)
    seg_bound[0] = True
    seg_o = seg[order]
    np.not_equal(seg_o[1:], seg_o[:-1], out=seg_bound[1:])
    pos_o = pos[order].astype(np.int32)
    ord_o = order.astype(np.int32)
    cnt_o = np.zeros(n, dtype=np.int32)
    idx = np.arange(n, dtype=np.int32)
    big = np.int32(n)
    new_run = np.empty(n, dtype=bool)
    is_last = np.empty(n, dtype=bool)

    top = (max_len - 1).bit_length()
    for level in range(top, 0, -1):
        blk = pos_o >> np.int32(level)
        np.not_equal(blk[1:], blk[:-1], out=new_run[1:])
        new_run[0] = True
        new_run |= seg_bound

        left = (pos_o & np.int32(1 << (level - 1))) == 0
        cum = np.cumsum(left, dtype=np.int32)
        cum_excl = cum - left
        # broadcast each run's starting cum_excl forward: run starts
        # carry nondecreasing values, so a running max back-fills them
        base = np.where(new_run, cum_excl, np.int32(0))
        np.maximum.accumulate(base, out=base)
        before = cum_excl - base  # lefts earlier in the run
        cnt_o += np.where(left, np.int32(0), before)

        if level > 1:
            # stable partition of each run into (lefts, rights), both
            # keeping their value order — the next level's sorted runs.
            # total lefts per run = cum at run end (back-filled via a
            # reversed running min: later run ends carry smaller cums)
            # minus cum_excl at run start.
            start = np.where(new_run, idx, np.int32(0))
            np.maximum.accumulate(start, out=start)
            is_last[:-1] = new_run[1:]
            is_last[-1] = True
            end_cum = np.where(is_last, cum, big)[::-1]
            np.minimum.accumulate(end_cum, out=end_cum)
            total_left = end_cum[::-1] - base
            dest = start + np.where(left, before, total_left + (idx - start) - before)
            nxt = np.empty(n, dtype=np.int32)
            nxt[dest] = pos_o
            pos_o, nxt = nxt, pos_o  # nxt now holds the freed buffer
            nxt[dest] = ord_o
            ord_o, nxt = nxt, ord_o
            nxt[dest] = cnt_o
            cnt_o = nxt
    counts[ord_o] = cnt_o
    return counts


def lru_hit_mask(lines: np.ndarray, n_sets: int, n_ways: int) -> np.ndarray:
    """Per-access hit mask of one set-associative LRU cache.

    Exactly reproduces :class:`repro.gpu.cache._SetAssociativeLRU` fed
    the same ``lines`` in order (hit promotes to MRU, miss allocates and
    evicts the LRU way).
    """
    if n_sets < 1 or n_ways < 1:
        raise ValueError("cache needs at least 1 set and 1 way")
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    n = lines.size
    hits = np.zeros(n, dtype=bool)
    if n == 0:
        return hits

    # 1. global run collapse: an immediate re-access has distance 0.
    head = np.empty(n, dtype=bool)
    head[0] = True
    np.not_equal(lines[1:], lines[:-1], out=head[1:])
    hits[~head] = True
    head_pos = np.flatnonzero(head)
    stream = lines[head_pos]
    m = stream.size

    # 2. group accesses by set (stable, so segments preserve stream
    # order) and collapse *set-local* runs: an access whose previous
    # same-set access touched the same line has reuse distance 0 — no
    # other line of the set intervened — so it always hits, and
    # dropping it shifts no surviving window's distinct-line count
    # (only whole runs sit between consecutive survivors of a line).
    # Warp-coherent streams interleave sets heavily, so this collapse
    # is where the stream actually shrinks (often by 10x or more).
    sets = stream % n_sets
    by_set = np.argsort(sets, kind="stable")
    g_sets = sets[by_set]
    g_lines = stream[by_set]
    new_set = np.empty(m, dtype=bool)
    new_set[0] = True
    np.not_equal(g_sets[1:], g_sets[:-1], out=new_set[1:])
    dup = np.zeros(m, dtype=bool)
    np.equal(g_lines[1:], g_lines[:-1], out=dup[1:])
    dup[new_set] = False
    hits[head_pos[by_set[dup]]] = True

    kidx = np.flatnonzero(~dup)
    n2 = kidx.size
    if n2 == 0:
        return hits
    seg_lines = g_lines[kidx]
    new2 = new_set[kidx]  # run heads survive, so segment starts do too
    seg2 = np.cumsum(new2) - 1
    seg_start2 = np.flatnonzero(new2)
    pos2 = np.arange(n2, dtype=np.int64) - seg_start2[seg2]

    # 3. previous surviving occurrence of each line, as a *set-local*
    # position (-1 = first use): stable sort by (segment, line) makes
    # consecutive occurrences adjacent.
    lv = seg_lines - int(seg_lines.min())
    span = int(lv.max()) + 1
    n_segs = int(seg2[-1]) + 1
    if n_segs * span >= _KEY_LIMIT:
        lv = np.unique(lv, return_inverse=True)[1].astype(np.int64)
        span = int(lv.max()) + 1
    by_ln = np.argsort(seg2 * span + lv, kind="stable")
    s_seg = seg2[by_ln]
    s_ln = lv[by_ln]
    same = (s_seg[1:] == s_seg[:-1]) & (s_ln[1:] == s_ln[:-1])
    prev = np.full(n2, -1, dtype=np.int64)
    prev[by_ln[1:][same]] = pos2[by_ln[:-1][same]]
    reused = np.flatnonzero(prev >= 0)

    # 4. reuse distance via segmented left-smaller counting: positions
    # and previous-use values are both set-local now, so the rank of
    # the previous use is the previous use itself, and -1 (cold) sorts
    # below every real position.
    below_left = _segmented_left_smaller(seg2, pos2, prev)
    distance = below_left[reused] - (prev[reused] + 1)
    hits[head_pos[by_set[kidx[reused[distance < n_ways]]]]] = True
    return hits


def replay_hierarchy(
    lines: np.ndarray,
    l1_sets: int,
    l1_ways: int,
    l2_sets: int,
    l2_ways: int,
) -> tuple[tuple[int, int], tuple[int, int]]:
    """Replay a recorded line stream through L1 then L2.

    Returns ``((l1_hits, l1_misses), (l2_hits, l2_misses))``,
    bit-identical to feeding :class:`repro.gpu.cache.CacheHierarchy`
    the same stream online (L2 observes exactly the L1 misses, in
    order).
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    l1_hit = lru_hit_mask(lines, l1_sets, l1_ways)
    l1_hits = int(np.count_nonzero(l1_hit))
    spill = lines[~l1_hit]
    l2_hit = lru_hit_mask(spill, l2_sets, l2_ways)
    l2_hits = int(np.count_nonzero(l2_hit))
    return (
        (l1_hits, lines.size - l1_hits),
        (l2_hits, spill.size - l2_hits),
    )
