"""Simulated GPU substrate.

The paper runs on NVIDIA Turing hardware (RT cores + SMs). We replace
that hardware with a mechanistic model:

* :mod:`repro.gpu.device` — device specifications (RTX 2080 / 2080 Ti);
* :mod:`repro.gpu.cache` — sampled set-associative LRU cache hierarchy
  (L1 per SM, shared L2) fed by the traversal engine's memory tracer
  hook; produces the hit rates of Fig. 6;
* :mod:`repro.gpu.replay` — vectorized reuse-distance replay of a
  recorded line stream, bit-identical to the online LRU simulation;
* :mod:`repro.gpu.costmodel` — converts hardware counters (warp steps,
  IS calls, transactions, AABB counts, bytes moved) into modeled GPU
  time. All speedups reported by experiments are ratios of modeled
  time, so trends depend on mechanistic counts, not on Python speed.
"""

from repro.gpu.device import DeviceSpec, RTX_2080, RTX_2080TI, KNOWN_DEVICES
from repro.gpu.cache import (
    CacheHierarchy,
    CacheStats,
    OnlineSampledCacheTracer,
    SampledCacheTracer,
    hierarchy_geometry,
)
from repro.gpu.replay import lru_hit_mask, replay_hierarchy
from repro.gpu.costmodel import CostModel, LaunchCost, IsKind

__all__ = [
    "DeviceSpec",
    "RTX_2080",
    "RTX_2080TI",
    "KNOWN_DEVICES",
    "CacheHierarchy",
    "CacheStats",
    "OnlineSampledCacheTracer",
    "SampledCacheTracer",
    "hierarchy_geometry",
    "lru_hit_mask",
    "replay_hierarchy",
    "CostModel",
    "LaunchCost",
    "IsKind",
]
