"""Device specifications for the simulated GPUs.

Numbers follow the public Turing specs for the two boards the paper
evaluates (Section 6.1). Only ratios between the two devices matter for
reproducing the cross-device trend of Fig. 11a vs 11b.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU.

    Attributes
    ----------
    name: marketing name.
    n_sms: streaming multiprocessors.
    n_rt_cores: ray tracing cores (1 per SM on Turing).
    n_cuda_cores: CUDA cores (64 per SM on Turing).
    clock_hz: boost clock used to convert cycles to seconds.
    mem_bytes: device memory capacity (drives OOM modeling).
    dram_bw: DRAM bandwidth, bytes/s.
    l2_bw: L2 bandwidth, bytes/s.
    l1_kb: L1/shared memory per SM, KiB.
    l2_kb: total L2, KiB.
    pcie_bw: effective host->device copy bandwidth, bytes/s.
    warp_size: SIMT width.
    """

    name: str
    n_sms: int
    n_rt_cores: int
    n_cuda_cores: int
    clock_hz: float
    mem_bytes: int
    dram_bw: float
    l2_bw: float
    l1_kb: int
    l2_kb: int
    pcie_bw: float = 12e9
    warp_size: int = 32

    @property
    def cycle(self) -> float:
        """Seconds per clock cycle."""
        return 1.0 / self.clock_hz


RTX_2080 = DeviceSpec(
    name="RTX 2080",
    n_sms=46,
    n_rt_cores=46,
    n_cuda_cores=2944,
    clock_hz=1.71e9,
    mem_bytes=8 * 1024**3,
    dram_bw=448e9,
    l2_bw=1800e9,
    l1_kb=64,
    l2_kb=4096,
)

RTX_2080TI = DeviceSpec(
    name="RTX 2080 Ti",
    n_sms=68,
    n_rt_cores=68,
    n_cuda_cores=4352,
    clock_hz=1.545e9,
    mem_bytes=11 * 1024**3,
    dram_bw=616e9,
    l2_bw=2400e9,
    l1_kb=64,
    l2_kb=5632,
)

KNOWN_DEVICES = {d.name: d for d in (RTX_2080, RTX_2080TI)}
