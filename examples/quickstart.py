"""Quickstart: RTNN neighbor search in a dozen lines.

Builds an engine over a random point cloud, runs both search types,
and prints the results plus the modeled-GPU performance report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RTNNEngine

rng = np.random.default_rng(0)
points = rng.random((20_000, 3))
queries = rng.random((5, 3))

engine = RTNNEngine(points)

# K nearest neighbors within a radius bound.
knn = engine.knn_search(queries, k=5, radius=0.1)
print("KNN results (indices, -1 = fewer than k found):")
print(knn.indices)
print("distances:")
print(np.sqrt(knn.sq_distances).round(4))

# All neighbors within the radius, at most k returned.
rng_res = engine.range_search(queries, radius=0.05, k=16)
print("\nRange-search neighbor counts:", rng_res.counts)

# Every search carries a modeled-GPU performance report.
rep = knn.report
print(f"\nModeled GPU time on {rep.device}: {rep.modeled_time * 1e6:.1f} us")
print("Breakdown (Fig. 12 categories):")
for category, seconds in rep.breakdown.as_dict().items():
    print(f"  {category:>7}: {seconds * 1e6:8.2f} us")
print(f"IS shader calls: {rep.is_calls}, BVH traversal steps: {rep.traversal_steps}")
print(f"partitions: {rep.n_partitions}, launch bundles: {rep.n_bundles}")
