"""Peek inside the simulated ray-tracing pipeline (the paper's Fig. 1b).

Renders per-ray execution timelines — RT-core traversal bursts (TL)
interleaved with IS shader calls — for a coherent and an incoherent
pair of queries, then prints the launch-level hardware picture the cost
model sees. This is the introspection the paper uses to motivate query
scheduling: spatially-distant rays exercise different traversal paths
and schedules.

Run:  python examples/inspect_pipeline.py
"""

import numpy as np

from repro.core.queues import KnnQueueBatch
from repro.core.shaders import KnnShader
from repro.geometry.ray import short_rays_from_queries
from repro.gpu.costmodel import IsKind
from repro.optix import Pipeline, build_gas, record_timelines, render_timelines

rng = np.random.default_rng(42)
points = rng.random((5_000, 3))
radius = 0.06

pipe = Pipeline()
gas = build_gas(points, radius, pipe.cost_model, leaf_size=1)

# Two spatially close queries and one far-away query.
queries = np.array(
    [
        points[0] + 0.001,          # ray 0
        points[0] + 0.002,          # ray 1: coherent with ray 0
        1.0 - points[0],            # ray 2: far side of the scene
    ]
)

acc = KnnQueueBatch(len(queries), k=4, radius=radius)
shader = KnnShader(points, queries, np.arange(len(queries)), acc)
rays = short_rays_from_queries(queries)

print("Per-ray execution timelines (cf. paper Fig. 1b):")
timelines = record_timelines(gas, rays, shader, watch=(0, 1, 2))
print(render_timelines(timelines))
print()

coherent = [sum(1 for e in t.events if e == "TL") for t in timelines]
print(f"rays 0/1 (coherent) popped {coherent[0]}/{coherent[1]} nodes; "
      f"ray 2 (distant) popped {coherent[2]} — different paths, "
      "different schedules.\n")

# The launch-level view the cost model consumes.
acc2 = KnnQueueBatch(len(points), k=4, radius=radius)
shader2 = KnnShader(points, points, np.arange(len(points)), acc2)
launch = pipe.launch(gas, short_rays_from_queries(points), shader2, IsKind.KNN)
t = launch.trace
print(f"full self-search launch: {t.n_rays} rays")
print(f"  traversal: {t.total_steps} pops, SIMD efficiency "
      f"{t.simd_efficiency:.2f}")
print(f"  IS shader: {t.total_is_calls} calls, SIMD efficiency "
      f"{t.is_simd_efficiency:.2f}")
print(f"  caches: L1 {launch.l1_hit_rate:.0%}, L2 {launch.l2_hit_rate:.0%}")
print(f"  modeled time: {launch.modeled_time * 1e6:.1f} us "
      f"(RT {launch.cost.rt_time * 1e6:.1f} / IS {launch.cost.is_time * 1e6:.1f}"
      f" / mem {launch.cost.mem_time * 1e6:.1f})")
