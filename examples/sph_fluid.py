"""SPH fluid density loop on RTNN range search.

Smoothed-particle hydrodynamics is the motivating workload for
cuNSearch (the SPlisHSPlasH fluid simulator): every timestep, each
particle needs all neighbors within the smoothing length ``h`` to
evaluate the density kernel. This example runs a miniature dam-break —
a block of particles collapsing under gravity in a box — where the
neighbor lists come from RTNN's fixed-radius search each step. The
acceleration structure is *refitted* between frames (``DynamicRTNN``)
and rebuilt only when the tree quality decays, exactly how per-frame
engines amortize construction; density follows the standard poly6
kernel.

Run:  python examples/sph_fluid.py
"""

import numpy as np

from repro import DynamicRTNN

# --- simulation parameters -----------------------------------------------
N_SIDE = 12                 # particles per block edge (12^3 = 1728)
H = 0.08                    # smoothing length (= search radius)
DT = 0.004
STEPS = 10
MASS = 1.0
REST_DENSITY = 1200.0
STIFFNESS = 60.0
GRAVITY = np.array([0.0, 0.0, -9.81])
MAX_NEIGHBORS = 64

POLY6 = 315.0 / (64.0 * np.pi * H**9)


def poly6(d2):
    """The SPH poly6 density kernel, vectorized over squared distances."""
    w = np.clip(H * H - d2, 0.0, None)
    return POLY6 * w**3


def main():
    # A block of fluid in the corner of the unit box.
    grid = np.linspace(0.05, 0.05 + (N_SIDE - 1) * H * 0.6, N_SIDE)
    x, y, z = np.meshgrid(grid, grid, grid + 0.3, indexing="ij")
    pos = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
    vel = np.zeros_like(pos)
    n = len(pos)
    print(f"simulating {n} particles, h={H}, {STEPS} steps")

    total_modeled = 0.0
    dyn = DynamicRTNN(pos, radius=H, rebuild_every=6)
    for step in range(STEPS):
        # Neighbor search: the per-step hot loop SPH engines optimize.
        frame = dyn.update(pos)
        res = dyn.range_search(pos, k=MAX_NEIGHBORS)
        total_modeled += res.report.modeled_time + frame.structure_time

        # Density via the poly6 kernel over the neighbor lists. Padding
        # slots are set to d2 = h^2 where the kernel vanishes.
        valid = res.indices >= 0
        d2 = np.where(valid, res.sq_distances, H * H)
        density = MASS * poly6(d2).sum(axis=1)
        density += MASS * poly6(np.zeros(n))  # self-contribution

        # Simple state equation + symmetric pressure push.
        pressure = STIFFNESS * np.clip(density / REST_DENSITY - 1.0, 0.0, None)
        force = np.zeros_like(pos)
        rows = np.repeat(np.arange(n), valid.sum(axis=1))
        cols = res.indices[valid]
        diff = pos[rows] - pos[cols]
        dist = np.linalg.norm(diff, axis=1)
        push = (pressure[rows] + pressure[cols])[:, None] * diff
        push /= np.maximum(dist, 1e-6)[:, None]
        np.add.at(force, rows, push)

        vel += (force / np.maximum(density, 1e-9)[:, None] + GRAVITY) * DT
        pos += vel * DT
        # Box walls: clamp + damp.
        for axis in range(3):
            low = pos[:, axis] < 0.0
            high = pos[:, axis] > 1.0
            pos[low, axis] = 0.0
            pos[high, axis] = 1.0
            vel[low | high, axis] *= -0.3

        kind = "rebuild" if frame.rebuilt else "refit"
        print(
            f"step {step:2d}: mean density {density.mean():8.1f}, "
            f"mean |v| {np.linalg.norm(vel, axis=1).mean():6.3f}, "
            f"search {res.report.modeled_time * 1e3:.3f} modeled ms, "
            f"{kind} {frame.structure_time * 1e6:.1f} us "
            f"(SAH {frame.sah_cost:.0f})"
        )

    print(f"\ntotal modeled neighbor-search time: {total_modeled * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
