"""Euclidean clustering of a LiDAR scan via RTNN range search.

The classic perception pipeline step (PCL's EuclideanClusterExtraction):
after removing the ground plane, group the remaining points into object
clusters by connecting every pair closer than a distance threshold.
Here the connectivity comes from RTNN's fixed-radius neighbor lists and
the components from a union-find — the whole pipeline stays vectorized.

Run:  python examples/lidar_clustering.py
"""

import numpy as np

from repro import RTNNEngine
from repro.datasets import kitti_like

CLUSTER_RADIUS = 0.9       # meters: points closer than this connect
MAX_NEIGHBORS = 32
MIN_CLUSTER_SIZE = 20


class UnionFind:
    """Array-based union-find with path halving."""

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, i: int) -> int:
        p = self.parent
        while p[i] != i:
            p[i] = p[p[i]]
            i = p[i]
        return i

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def main():
    scan = kitti_like(30_000, seed=11)
    print(f"LiDAR-like scan: {len(scan)} points")

    # 1. Ground removal: the ground is a thin z-slab in this scan model.
    ground = np.abs(scan[:, 2]) < 0.2
    objects = scan[~ground]
    print(f"ground points removed: {ground.sum()}, remaining: {len(objects)}")

    # 2. Fixed-radius neighbor lists from RTNN.
    engine = RTNNEngine(objects)
    res = engine.range_search(objects, radius=CLUSTER_RADIUS, k=MAX_NEIGHBORS)
    print(
        f"neighbor search: {res.report.modeled_time * 1e3:.3f} modeled ms on "
        f"{res.report.device} ({res.report.is_calls} IS calls, "
        f"{res.report.n_bundles} bundles)"
    )

    # 3. Connected components over the neighbor graph.
    uf = UnionFind(len(objects))
    rows = np.repeat(np.arange(len(objects)), res.counts)
    cols = res.indices[res.indices >= 0]
    for a, b in zip(rows.tolist(), cols.tolist()):
        uf.union(a, b)
    roots = np.array([uf.find(i) for i in range(len(objects))])

    labels, counts = np.unique(roots, return_counts=True)
    clusters = labels[counts >= MIN_CLUSTER_SIZE]
    print(f"\nclusters with >= {MIN_CLUSTER_SIZE} points: {len(clusters)}")
    order = np.argsort(-counts[np.isin(labels, clusters)])
    for rank, c in enumerate(clusters[order][:8]):
        members = objects[roots == c]
        center = members.mean(axis=0)
        extent = members.max(axis=0) - members.min(axis=0)
        print(
            f"  #{rank}: {len(members):5d} pts, center "
            f"({center[0]:7.1f}, {center[1]:7.1f}, {center[2]:5.1f}), "
            f"extent ({extent[0]:.1f} x {extent[1]:.1f} x {extent[2]:.1f}) m"
        )


if __name__ == "__main__":
    main()
