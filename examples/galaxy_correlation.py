"""Two-point correlation of a galaxy catalogue via RTNN range counts.

Cosmology's bread-and-butter statistic: the two-point correlation
function xi(r) measures how much more likely galaxy pairs are at
separation r than in a uniform random catalogue. The pair counts DD(r)
and DR(r) at a ladder of radii are exactly bounded range-search counts
— the N-body use case that motivates the paper's third dataset family.

Estimator (Davis-Peebles): xi(r) = DD(r) / DR(r) * (N_R / N_D) - 1,
computed from differential shell counts.

Run:  python examples/galaxy_correlation.py
"""

import numpy as np

from repro import RTNNEngine
from repro.datasets import nbody_like

BOX = 500.0
N_GALAXIES = 20_000
RADII = np.array([4.0, 8.0, 16.0, 32.0, 64.0])
MAX_COUNT = 4096


def cumulative_pair_counts(engine: RTNNEngine, queries: np.ndarray) -> np.ndarray:
    """Pairs within each radius of the ladder (sum of range counts)."""
    totals = np.empty(len(RADII))
    modeled = 0.0
    for i, r in enumerate(RADII):
        res = engine.range_search(queries, radius=float(r), k=MAX_COUNT)
        totals[i] = res.counts.sum()
        modeled += res.report.modeled_time
    print(f"    ({modeled * 1e3:.2f} modeled ms across the radius ladder)")
    return totals


def main():
    rng = np.random.default_rng(2)
    galaxies = nbody_like(N_GALAXIES, seed=2, box_size=BOX)
    randoms = rng.uniform(0, BOX, (N_GALAXIES, 3))
    print(f"catalogue: {N_GALAXIES} galaxies in a {BOX:.0f}^3 box")

    print("  DD: data-data pair counts")
    dd = cumulative_pair_counts(RTNNEngine(galaxies), galaxies)
    print("  DR: data-random pair counts")
    dr = cumulative_pair_counts(RTNNEngine(randoms), galaxies)

    # Differential shells from the cumulative ladders.
    dd_shell = np.diff(np.concatenate(([0.0], dd)))
    dr_shell = np.diff(np.concatenate(([0.0], dr)))
    xi = dd_shell / np.maximum(dr_shell, 1.0) - 1.0

    print("\n  r [Mpc/h]    DD shell    DR shell     xi(r)")
    for r, a, b, x in zip(RADII, dd_shell, dr_shell, xi):
        print(f"  {r:9.1f} {a:11.0f} {b:11.0f} {x:9.2f}")

    # Hierarchical clustering: correlation strongest at small r and
    # decaying outward — verify the qualitative law holds.
    assert xi[0] > xi[-1] > -1.0
    print("\nxi(r) decays with r: the catalogue is hierarchically clustered, "
          "as the Millennium-style generator intends.")


if __name__ == "__main__":
    main()
